// Command saturate measures what the bound governor buys under overload.
//
// It drives one shared Catalog from hundreds of concurrent sessions in
// three phases: cheap motif queries alone (the latency baseline), the
// same cheap clients while worst/*-style AGM-saturating triangle bombs
// pin the CPU through ungoverned sessions, and the overload mix again
// with every session behind a PolicyReject Governor whose log2 budget
// sits between the cheap bound and the bomb bound — bombs are refused at
// admission (a typed fdq.ErrBoundExceeded, after which the bomb client
// backs off) so the cheap clients keep the machine.
//
//	saturate -out BENCH_6.json [-duration 2s] [-clients 8] [-bombs 32] [-workers N]
//	saturate -addr self -out BENCH_8.json   # same experiment over TCP via fdqd
//	saturate -churn -churn-conns 2000 -out BENCH_9.json  # connection-churn soak
//
// -addr switches the harness to network mode: every client and bomb
// drives its queries across a real TCP connection through fdqd instead
// of an in-process session pool. "-addr self" serves the saturate
// catalog from a loopback fdqd inside this process (what BENCH_8.json
// records); any other value dials an external fdqd that must expose the
// same relations plus a "governed" tenant holding the budget governor.
// Governed phases dial as tenant "governed", so admission happens
// server-side and refusals cross the wire as typed errors that still
// errors.Is-match fdq.ErrBoundExceeded.
//
// -workers pins every query's worker-pool size (fdq's (*Q).Workers knob;
// 0 keeps the default of one worker per core). The overload experiment is
// about admission, not scheduling, so pinning -workers 1 keeps per-query
// parallelism from convolving with the client mix on small machines —
// and on a big box -workers can instead stress the governor while each
// bomb also fans out morsels.
//
// The report records per-phase p50/p99 cheap-query latency and the two
// headline ratios: ungoverned p99 / unloaded p99 (how badly an open
// system collapses) and governed p99 / unloaded p99 (how flat the
// governed system stays).
//
// -churn switches to the resilience soak (see churn.go): -churn-conns
// worker connections churn through chaos proxies — dialing, querying,
// abandoning streams, hard-closing — while a small direct fleet
// measures governed cheap-query latency. The pass gate requires zero
// untyped errors, p99 within 2x unloaded, and goroutines, FDs,
// admission slots and open connections all back at baseline afterwards
// (what BENCH_9.json records).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/fdq"
	"repro/fdq/fdqc"
	"repro/fdq/fdqd"
)

const (
	cheapN    = 20  // cheap motif: two-hop path over a dense n×n edge grid (~300µs of work)
	bombN     = 128 // bomb: dense n×n triangle, output n^3 (worst/agm-product shape)
	sessions  = 200 // concurrent sessions sharing the catalog (cycled by the clients)
	bombPause = 10 * time.Millisecond

	// cheapInterval is each cheap client's request period: the cheap
	// tenants together offer well under one core of load, so their
	// latency reflects what the bombs do to the machine, not each other.
	cheapInterval = 10 * time.Millisecond
)

// Phase is one measured configuration of the mix.
type Phase struct {
	Name           string  `json:"name"`
	CheapQueries   int     `json:"cheap_queries"`
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	BombAttempts   int64   `json:"bomb_attempts,omitempty"`
	BombRuns       int64   `json:"bomb_runs,omitempty"`
	BombRejections int64   `json:"bomb_rejections,omitempty"`
}

// Report is the committed BENCH_6.json document.
type Report struct {
	GoVersion string  `json:"go_version"`
	GoArch    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Recorded  string  `json:"recorded"`
	Mode      string  `json:"mode"` // "in-process" or "network" (over TCP through fdqd)
	Clients   int     `json:"cheap_clients"`
	Bombs     int     `json:"bomb_clients"`
	Sessions  int     `json:"sessions"`
	CheapLog2 float64 `json:"cheap_log_bound"`
	BombLog2  float64 `json:"bomb_log_bound"`
	Budget    float64 `json:"governor_log_budget"`
	Phases    []Phase `json:"phases"`

	UngovernedP99Ratio float64 `json:"ungoverned_p99_ratio"`
	GovernedP99Ratio   float64 `json:"governed_p99_ratio"`
	TargetUngoverned   float64 `json:"target_ungoverned_min"`
	TargetGoverned     float64 `json:"target_governed_max"`
	Pass               bool    `json:"pass"`
}

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measured window per phase")
	clients := flag.Int("clients", 8, "cheap-query client goroutines")
	bombs := flag.Int("bombs", 32, "bomb client goroutines during overload phases")
	flag.IntVar(&workers, "workers", 0, "worker-pool size per query (0 = one per core)")
	addr := flag.String("addr", "", `network mode: "self" serves a loopback fdqd in-process, anything else dials an external fdqd ("" = in-process sessions)`)
	churn := flag.Bool("churn", false, "run the connection-churn soak (thousands of churning connections through chaos proxies) instead of the overload experiment")
	churnConns := flag.Int("churn-conns", 2000, "concurrent connections the -churn soak must reach")
	out := flag.String("out", "-", "report path, - for stdout")
	flag.Parse()

	if *churn {
		runChurn(*churnConns, *clients, *duration, *out)
		return
	}

	cat := buildCatalog()
	cheapLB := explainBound(cat, cheapQuery())
	bombLB := explainBound(cat, bombQuery())
	budget := math.Ceil(cheapLB) + 1 // admits every cheap query, refuses every bomb
	if budget >= bombLB {
		fatal(fmt.Errorf("budget %.1f does not separate cheap 2^%.1f from bomb 2^%.1f", budget, cheapLB, bombLB))
	}
	gov := fdq.NewGovernor(fdq.WithMaxLogBound(budget)) // PolicyReject is the default

	// Network mode: queries cross a real TCP socket through fdqd. The
	// governed phases dial as tenant "governed", whose server-side
	// governor holds the same budget the in-process mode would.
	mode := "in-process"
	serveAddr := *addr
	var srv *fdqd.Server
	if *addr != "" {
		mode = "network"
		if *addr == "self" {
			var err error
			srv, err = fdqd.New(fdqd.Config{
				Catalog: cat,
				Tenants: map[string][]fdq.GovernorOption{
					"governed": {fdq.WithMaxLogBound(budget)},
				},
			})
			if err != nil {
				fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go srv.Serve(ln)
			serveAddr = ln.Addr().String()
		}
	}
	newRunner := func(governed bool) runner {
		if mode == "network" {
			tenant := ""
			if governed {
				tenant = "governed"
			}
			return newNetRunner(serveAddr, tenant, *clients, *bombs)
		}
		if governed {
			return newInprocRunner(cat, gov)
		}
		return newInprocRunner(cat, nil)
	}

	rep := Report{
		GoVersion:        runtime.Version(),
		GoArch:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		Recorded:         time.Now().UTC().Format(time.RFC3339),
		Mode:             mode,
		Clients:          *clients,
		Bombs:            *bombs,
		Sessions:         sessions,
		CheapLog2:        round3(cheapLB),
		BombLog2:         round3(bombLB),
		Budget:           budget,
		TargetUngoverned: 20,
		TargetGoverned:   5,
	}

	fmt.Fprintf(os.Stderr, "saturate: %s mode, cheap bound 2^%.2f, bomb bound 2^%.2f, budget 2^%.0f, %d+%d clients over %d sessions\n",
		mode, cheapLB, bombLB, budget, *clients, *bombs, sessions)

	phase := func(name string, governed bool, bombs int) Phase {
		r := newRunner(governed)
		defer r.close()
		return runPhase(name, *duration, *clients, bombs, r)
	}
	unloaded := phase("unloaded", false, 0)
	ungoverned := phase("ungoverned-overload", false, *bombs)
	governed := phase("governed-overload", true, *bombs)
	rep.Phases = []Phase{unloaded, ungoverned, governed}

	if srv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			scancel()
			fatal(fmt.Errorf("fdqd shutdown: %w", err))
		}
		scancel()
	}

	rep.UngovernedP99Ratio = round3(ungoverned.P99Micros / unloaded.P99Micros)
	rep.GovernedP99Ratio = round3(governed.P99Micros / unloaded.P99Micros)
	rep.Pass = rep.UngovernedP99Ratio >= rep.TargetUngoverned && rep.GovernedP99Ratio <= rep.TargetGoverned

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saturate: ungoverned p99 %.1f× unloaded (target ≥%.0f×), governed %.1f× (target ≤%.0f×): pass=%v\n",
		rep.UngovernedP99Ratio, rep.TargetUngoverned, rep.GovernedP99Ratio, rep.TargetGoverned, rep.Pass)
	if !rep.Pass {
		os.Exit(1)
	}
}

// buildCatalog defines the cheap motif's sparse edge list and the bomb's
// dense triangle relations (the worst/agm-product construction: three
// complete n×n relations whose triangle join saturates the AGM bound).
func buildCatalog() *fdq.Catalog {
	cat := fdq.NewCatalog()
	dense := func(n int) [][]fdq.Value {
		var rows [][]fdq.Value
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rows = append(rows, []fdq.Value{int64(i), int64(j)})
			}
		}
		return rows
	}
	if err := cat.Define("E", []string{"a", "b"}, dense(cheapN)); err != nil {
		fatal(err)
	}
	grid := dense(bombN)
	for _, name := range []string{"R", "S", "T"} {
		if err := cat.Define(name, []string{"a", "b"}, grid); err != nil {
			fatal(err)
		}
	}
	return cat
}

// workers is the -workers flag: the worker-pool size stamped on every
// query (0 leaves fdq's one-per-core default).
var workers int

// cheapQuery is the motif a well-behaved tenant runs: a two-hop path over
// the small edge grid — about a millisecond of work, the scale at which
// scheduler starvation shows up inside a single query's latency.
func cheapQuery() *fdq.Q {
	return fdq.Query().Vars("x", "y", "z").Rel("E", "x", "y").Rel("E", "y", "z").Workers(workers)
}

// bombQuery is the adversarial tenant: the AGM-saturating dense triangle,
// counted so it is pure CPU with no materialization ceiling.
func bombQuery() *fdq.Q {
	return fdq.Query().Vars("x", "y", "z").
		Rel("R", "x", "y").Rel("S", "y", "z").Rel("T", "z", "x").Workers(workers)
}

// cheapSpec and bombSpec are the same two queries in wire form for the
// network mode (Count sets COUNT mode on a copy client-side).
func cheapSpec() *fdqc.QuerySpec {
	return &fdqc.QuerySpec{
		Vars:    []string{"x", "y", "z"},
		Rels:    []fdqc.RelSpec{{Name: "E", Vars: []string{"x", "y"}}, {Name: "E", Vars: []string{"y", "z"}}},
		Workers: workers,
	}
}

func bombSpec() *fdqc.QuerySpec {
	return &fdqc.QuerySpec{
		Vars: []string{"x", "y", "z"},
		Rels: []fdqc.RelSpec{
			{Name: "R", Vars: []string{"x", "y"}},
			{Name: "S", Vars: []string{"y", "z"}},
			{Name: "T", Vars: []string{"z", "x"}},
		},
		Workers: workers,
	}
}

func explainBound(cat *fdq.Catalog, q *fdq.Q) float64 {
	ex, err := cat.Session().Explain(q)
	if err != nil {
		fatal(err)
	}
	return ex.LogBound
}

// runner is where a phase's queries execute: in this process against a
// session pool, or across one TCP connection per client through fdqd.
// The open-loop harness above it is identical either way.
type runner interface {
	cheap(ctx context.Context, c, i int) error
	bomb(ctx context.Context, b, i int) error
	close()
}

// inprocRunner cycles each client through its own slice of a session
// pool so the catalog really serves hundreds of concurrent sessions.
type inprocRunner struct {
	pool   []*fdq.Session
	cheapQ *fdq.Q
	bombQ  *fdq.Q
}

func newInprocRunner(cat *fdq.Catalog, gov *fdq.Governor) *inprocRunner {
	r := &inprocRunner{cheapQ: cheapQuery(), bombQ: bombQuery(), pool: make([]*fdq.Session, sessions)}
	for i := range r.pool {
		if gov != nil {
			r.pool[i] = fdq.NewSession(cat, fdq.WithGovernor(gov))
		} else {
			r.pool[i] = cat.Session()
		}
	}
	return r
}

func (r *inprocRunner) cheap(ctx context.Context, c, i int) error {
	_, err := r.pool[(c*17+i)%len(r.pool)].Count(ctx, r.cheapQ)
	return err
}

func (r *inprocRunner) bomb(ctx context.Context, b, i int) error {
	_, err := r.pool[(b*31+i)%len(r.pool)].Count(ctx, r.bombQ)
	return err
}

func (r *inprocRunner) close() {}

// netRunner holds one dedicated connection per client goroutine (the
// protocol runs one query at a time per connection) — cheap and bomb
// latencies include the full wire round trip.
type netRunner struct {
	cheapConns []*fdqc.Client
	bombConns  []*fdqc.Client
	cheapSpec  *fdqc.QuerySpec
	bombSpec   *fdqc.QuerySpec
}

func newNetRunner(addr, tenant string, clients, bombs int) *netRunner {
	r := &netRunner{cheapSpec: cheapSpec(), bombSpec: bombSpec()}
	dial := func() *fdqc.Client {
		c, err := fdqc.Dial(addr, fdqc.WithTenant(tenant))
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", addr, err))
		}
		return c
	}
	for i := 0; i < clients; i++ {
		r.cheapConns = append(r.cheapConns, dial())
	}
	for i := 0; i < bombs; i++ {
		r.bombConns = append(r.bombConns, dial())
	}
	return r
}

func (r *netRunner) cheap(ctx context.Context, c, i int) error {
	_, err := r.cheapConns[c].Count(ctx, r.cheapSpec)
	return err
}

func (r *netRunner) bomb(ctx context.Context, b, i int) error {
	_, err := r.bombConns[b].Count(ctx, r.bombSpec)
	return err
}

func (r *netRunner) close() {
	for _, c := range r.cheapConns {
		c.Close()
	}
	for _, c := range r.bombConns {
		c.Close()
	}
}

// runPhase measures cheap-query latency for d while bombs (if any) churn,
// everything executing through r.
func runPhase(name string, d time.Duration, clients, bombs int, r runner) Phase {
	ctx, cancel := context.WithCancel(context.Background())
	var bombAttempts, bombRuns, bombRejects int64
	var wg sync.WaitGroup
	for b := 0; b < bombs; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				atomic.AddInt64(&bombAttempts, 1)
				err := r.bomb(ctx, b, i)
				switch {
				case err == nil:
					atomic.AddInt64(&bombRuns, 1)
				case errors.Is(err, fdq.ErrBoundExceeded):
					atomic.AddInt64(&bombRejects, 1)
					select { // refused: back off before retrying
					case <-time.After(bombPause):
					case <-ctx.Done():
					}
				}
			}
		}(b)
	}

	// Let the bombs reach steady state before the measured window opens.
	warm := 200 * time.Millisecond
	if bombs == 0 {
		warm = 50 * time.Millisecond
	}
	time.Sleep(warm)

	var mu sync.Mutex
	var lat []time.Duration
	deadline := time.Now().Add(d)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []time.Duration
			defer func() {
				mu.Lock()
				lat = append(lat, mine...)
				mu.Unlock()
			}()
			// Open-loop: requests "arrive" on a fixed schedule and latency
			// is measured from the intended arrival time, so time a starved
			// client spends waiting to be scheduled counts against the
			// system instead of silently thinning the sample (the
			// coordinated-omission trap).
			for i, next := 0, time.Now(); next.Before(deadline); i, next = i+1, next.Add(cheapInterval) {
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				if err := r.cheap(ctx, c, i); err != nil {
					if errors.Is(err, context.Canceled) { // phase ended mid-query
						return
					}
					fatal(fmt.Errorf("phase %s: cheap query failed: %w", name, err))
				}
				mine = append(mine, time.Since(next))
			}
		}(c)
	}

	time.Sleep(time.Until(deadline))
	cancel()
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := Phase{
		Name:           name,
		CheapQueries:   len(lat),
		P50Micros:      micros(percentile(lat, 0.50)),
		P99Micros:      micros(percentile(lat, 0.99)),
		BombAttempts:   bombAttempts,
		BombRuns:       bombRuns,
		BombRejections: bombRejects,
	}
	fmt.Fprintf(os.Stderr, "saturate: %-20s %6d cheap queries, p50 %8.0fµs p99 %8.0fµs, bombs attempted=%d run=%d rejected=%d\n",
		p.Name, p.CheapQueries, p.P50Micros, p.P99Micros, bombAttempts, bombRuns, bombRejects)
	return p
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saturate:", err)
	os.Exit(1)
}
