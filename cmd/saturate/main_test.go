package main

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"repro/fdq"
	"repro/fdq/fdqd"
)

// TestPhasesMicro drives miniature versions of all three phases: the
// full-length measurement is cmd/saturate itself (BENCH_6.json); here we
// check the harness machinery — catalog, bounds, the governed rejection
// loop, and the percentile plumbing.
func TestPhasesMicro(t *testing.T) {
	cat := buildCatalog()
	cheapLB := explainBound(cat, cheapQuery())
	bombLB := explainBound(cat, bombQuery())
	if math.IsNaN(cheapLB) || math.IsNaN(bombLB) || cheapLB >= bombLB {
		t.Fatalf("bounds do not separate: cheap %v bomb %v", cheapLB, bombLB)
	}
	budget := math.Ceil(cheapLB) + 1
	if budget >= bombLB {
		t.Fatalf("budget %v does not sit between the bounds", budget)
	}
	gov := fdq.NewGovernor(fdq.WithMaxLogBound(budget))

	const d = 150 * time.Millisecond
	unloaded := runPhase("unloaded", d, 1, 0, newInprocRunner(cat, nil))
	if unloaded.CheapQueries == 0 || unloaded.P99Micros <= 0 {
		t.Fatalf("unloaded phase produced no samples: %+v", unloaded)
	}
	governed := runPhase("governed", d, 1, 2, newInprocRunner(cat, gov))
	if governed.BombRejections == 0 {
		t.Fatalf("governor rejected no bombs: %+v", governed)
	}
	if governed.BombRuns != 0 {
		t.Fatalf("governor admitted %d bombs over budget", governed.BombRuns)
	}
	ungoverned := runPhase("ungoverned", d, 1, 2, newInprocRunner(cat, nil))
	if ungoverned.BombAttempts == 0 {
		t.Fatalf("no bombs attempted ungoverned: %+v", ungoverned)
	}
}

// TestNetworkPhaseMicro runs a miniature governed phase over a real
// loopback fdqd, exercising the netRunner path BENCH_8.json records:
// admission happens server-side and rejections cross the wire.
func TestNetworkPhaseMicro(t *testing.T) {
	cat := buildCatalog()
	budget := math.Ceil(explainBound(cat, cheapQuery())) + 1
	srv, err := fdqd.New(fdqd.Config{
		Catalog: cat,
		Tenants: map[string][]fdq.GovernorOption{
			"governed": {fdq.WithMaxLogBound(budget)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	const d = 150 * time.Millisecond
	r := newNetRunner(ln.Addr().String(), "governed", 1, 2)
	governed := runPhase("governed-net", d, 1, 2, r)
	r.close()
	if governed.CheapQueries == 0 {
		t.Fatalf("no cheap queries completed over the wire: %+v", governed)
	}
	if governed.BombRejections == 0 {
		t.Fatalf("no bombs rejected across the wire: %+v", governed)
	}
	if governed.BombRuns != 0 {
		t.Fatalf("server admitted %d bombs over budget", governed.BombRuns)
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("percentile(nil) = %v, want 0", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(sorted, 0.99); got != 9 {
		t.Fatalf("p99 of 10 = %v, want 9 (index floor)", got)
	}
	if got := micros(1500 * time.Nanosecond); got != 1.5 {
		t.Fatalf("micros = %v, want 1.5", got)
	}
	if got := round3(1.23456); got != 1.235 {
		t.Fatalf("round3 = %v, want 1.235", got)
	}
}
