// Command fdjoin analyzes and evaluates join queries with functional
// dependencies from a simple text format (see internal/query.Parse for the
// grammar), printing every bound of the paper and running any of its
// algorithms through the prepared-query engine.
//
// Usage:
//
//	fdjoin analyze <file.fdq>
//	fdjoin run [-alg auto|chain|sm|csma|generic|binary] [-parallel N] <file.fdq>
//	fdjoin demo                 # analyze the paper's running example
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/paper"
	"repro/internal/query"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		if len(os.Args) != 3 {
			usage()
		}
		q := load(os.Args[2])
		analyze(q)
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		alg := fs.String("alg", "auto", "algorithm: auto|chain|sm|csma|generic|binary")
		par := fs.Int("parallel", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		q := load(fs.Arg(0))
		run(q, core.Algorithm(*alg), *par)
	case "demo":
		q := paper.Fig1QuasiProduct(64)
		fmt.Println("paper running example: Q :- R(x,y), S(y,z), T(z,u), xz→u, yu→x, N=64")
		analyze(q)
		run(q, core.AlgAuto, 0)
	default:
		usage()
	}
}

func load(path string) *query.Q {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	q, err := query.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := q.Validate(); err != nil {
		fatal(err)
	}
	return q
}

func analyze(q *query.Q) {
	a := core.Analyze(q)
	fmt.Printf("variables: %v\n", q.Names)
	for _, r := range q.Rels {
		fmt.Printf("  %s%v: %d tuples\n", r.Name, r.Attrs, r.Len())
	}
	fmt.Printf("lattice: %d elements; distributive=%v modular=%v normal=%v M3-top=%v\n",
		a.LatticeSize, a.Distributive, a.Modular, a.Normal, a.HasM3Top)
	fmt.Printf("bounds (log2):\n")
	fmt.Printf("  AGM (FD-blind)     %8.3f\n", a.LogAGM)
	fmt.Printf("  AGM(Q⁺)            %8.3f\n", a.LogAGMClosure)
	fmt.Printf("  chain (best good)  %8.3f\n", a.LogChain)
	fmt.Printf("  GLVV / LLP         %8.3f\n", a.LogLLP)
	fmt.Printf("  CLLP (degrees)     %8.3f\n", a.LogCLLP)
	fmt.Printf("good SM proof exists: %v\n", a.SMProofExists)
}

func run(q *query.Q, alg core.Algorithm, workers int) {
	out, st, err := core.ExecuteOptions(context.Background(), q,
		&engine.Options{Algorithm: alg, Workers: workers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s (%s)\n", st.Plan.Algorithm, st.Plan.Reason)
	if !math.IsNaN(st.Plan.LogBound) && !math.IsInf(st.Plan.LogBound, 1) {
		fmt.Printf("predicted bound: 2^%.3f\n", st.Plan.LogBound)
	}
	if st.Workers > 1 {
		fmt.Printf("executed on %d workers (partitioned on %s)\n", st.Workers, q.Names[st.PartitionVar])
	}
	fmt.Printf("|Q| = %d tuples in %v\n", out.Len(), st.Duration)
	for i := 0; i < 10 && i < out.Len(); i++ {
		fmt.Printf("  %v\n", out.Row(i))
	}
	if out.Len() > 10 {
		fmt.Printf("  ... %d more\n", out.Len()-10)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fdjoin analyze <file.fdq> | fdjoin run [-alg A] [-parallel N] <file.fdq> | fdjoin demo")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdjoin:", err)
	os.Exit(1)
}
