// Command fdjoin analyzes and evaluates join queries with functional
// dependencies from a simple text format (see internal/query.Parse for the
// grammar), printing every bound of the paper and running any of its
// algorithms through the public fdq API (catalog + session + streaming
// rows).
//
// Usage:
//
//	fdjoin analyze <file.fdq>
//	fdjoin run [-alg auto|chain|sm|csma|generic|binary] [-parallel N] [-limit N]
//	           [-timeout D] [-max-bound B] <file.fdq>
//	fdjoin demo                 # analyze the paper's running example
//
// run streams: rows print as the executor produces them, and -limit N
// stops the execution the moment the N-th row exists. -timeout and
// -max-bound attach a resource governor: the query aborts after D, and is
// refused outright when its certified log2 output bound exceeds B.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/fdq"
	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/query"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		if len(os.Args) != 3 {
			usage()
		}
		analyze(load(os.Args[2]))
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		alg := fs.String("alg", "auto", "algorithm: auto|chain|sm|csma|generic|binary")
		par := fs.Int("parallel", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
		limit := fs.Int("limit", 0, "stop after N rows (0 = no limit)")
		timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
		maxBound := fs.Float64("max-bound", math.Inf(1), "refuse queries whose certified log2 output bound exceeds this")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		cat, qb, err := fdq.ParseScript(string(src))
		if err != nil {
			fatal(err)
		}
		run(cat, qb.Alg(*alg).Workers(*par).Limit(*limit), governor(*timeout, *maxBound))
	case "demo":
		q := paper.Fig1QuasiProduct(64)
		fmt.Println("paper running example: Q :- R(x,y), S(y,z), T(z,u), xz→u, yu→x, N=64")
		analyze(q)
		cat, qb, err := fdq.ParseScript(paper.Fig1QuasiProductScript(64))
		if err != nil {
			fatal(err)
		}
		run(cat, qb, nil)
	default:
		usage()
	}
}

func load(path string) *query.Q {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	q, err := query.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := q.Validate(); err != nil {
		fatal(err)
	}
	return q
}

func analyze(q *query.Q) {
	a := core.Analyze(q)
	fmt.Printf("variables: %v\n", q.Names)
	for _, r := range q.Rels {
		fmt.Printf("  %s%v: %d tuples\n", r.Name, r.Attrs, r.Len())
	}
	fmt.Printf("lattice: %d elements; distributive=%v modular=%v normal=%v M3-top=%v\n",
		a.LatticeSize, a.Distributive, a.Modular, a.Normal, a.HasM3Top)
	fmt.Printf("bounds (log2):\n")
	fmt.Printf("  AGM (FD-blind)     %8.3f\n", a.LogAGM)
	fmt.Printf("  AGM(Q⁺)            %8.3f\n", a.LogAGMClosure)
	fmt.Printf("  chain (best good)  %8.3f\n", a.LogChain)
	fmt.Printf("  GLVV / LLP         %8.3f\n", a.LogLLP)
	fmt.Printf("  CLLP (degrees)     %8.3f\n", a.LogCLLP)
	fmt.Printf("good SM proof exists: %v\n", a.SMProofExists)
}

// governor maps the run flags onto an fdq.Governor, or nil when neither
// control is requested.
func governor(timeout time.Duration, maxBound float64) *fdq.Governor {
	var opts []fdq.GovernorOption
	if timeout > 0 {
		opts = append(opts, fdq.WithQueryTimeout(timeout))
	}
	if !math.IsInf(maxBound, 1) {
		opts = append(opts, fdq.WithMaxLogBound(maxBound))
	}
	if len(opts) == 0 {
		return nil
	}
	return fdq.NewGovernor(opts...)
}

// run executes the query through the public API, streaming rows as the
// executor produces them, under the governor's budgets when one is set.
func run(cat *fdq.Catalog, qb *fdq.Q, gov *fdq.Governor) {
	var sessOpts []fdq.SessionOption
	if gov != nil {
		sessOpts = append(sessOpts, fdq.WithGovernor(gov))
	}
	sess := fdq.NewSession(cat, sessOpts...)
	ex, err := sess.Explain(qb)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s (%s)\n", ex.Algorithm, ex.Reason)
	if !math.IsNaN(ex.LogBound) && !math.IsInf(ex.LogBound, 1) {
		fmt.Printf("predicted bound: 2^%.3f\n", ex.LogBound)
	}

	start := time.Now()
	rows, err := sess.Query(context.Background(), qb)
	if err != nil {
		var be *fdq.BoundExceededError
		if errors.As(err, &be) {
			fmt.Fprintf(os.Stderr,
				"fdjoin: query refused: its certified output bound 2^%.3f exceeds the -max-bound budget 2^%.3f\n"+
					"        (the bound certifies worst-case output size — raise -max-bound, add FDs or degree\n"+
					"        bounds that tighten the bound, or add -limit to cap the answer)\n",
				be.LogBound, be.Budget)
			os.Exit(1)
		}
		fatal(err)
	}
	defer rows.Close()
	shown, total := 0, 0
	for rows.Next() {
		total++
		if shown < 10 {
			fmt.Printf("  %v\n", rows.Row())
			shown++
		}
	}
	if err := rows.Err(); err != nil {
		fatal(err)
	}
	if total > shown {
		fmt.Printf("  ... %d more\n", total-shown)
	}
	fmt.Printf("|Q| = %d tuples in %v\n", total, time.Since(start))
	if st := rows.Stats(); st != nil && st.Workers > 1 {
		fmt.Printf("executed on %d workers (algorithm %s)\n", st.Workers, st.Algorithm)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fdjoin analyze <file.fdq> | fdjoin run [-alg A] [-parallel N] [-limit N] [-timeout D] [-max-bound B] <file.fdq> | fdjoin demo")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdjoin:", err)
	os.Exit(1)
}
