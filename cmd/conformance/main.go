// Command conformance runs the scenario catalog through the differential
// oracle: every scenario × every engine configuration (each algorithm,
// sequential and parallel, plus prepared-rebind) against the naive
// reference, with planner bound certification and metamorphic checks. It
// writes a JSON report and exits non-zero on any failure.
//
//	conformance -tier small                    # CI tier, report to stdout
//	conformance -tier full -stable -out CONFORMANCE.json
//	conformance -tier small -faults            # fault-injection matrix
//
// -stable zeroes all wall-clock timings so a regenerated report diffs
// cleanly against the committed evidence.
//
// -faults switches to the fault-injection oracle: every scenario re-runs
// with panics and delays forced at the canonical injection sites (see
// internal/faultinject), asserting typed errors, no goroutine leaks, and
// byte-identical results on the next clean run, plus the fdq session-level
// cache-eviction site.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/oracle"
	"repro/internal/scenario"
)

// Report is the top-level JSON document.
type Report struct {
	Tier      string `json:"tier"`
	Scenarios int    `json:"scenarios"`
	Passed    int    `json:"passed"`
	Failed    int    `json:"failed"`

	ConfigRuns     int `json:"config_runs"`
	ConfigPasses   int `json:"config_passes"`
	ConfigSkips    int `json:"config_skips"`
	MetamorphicRun int `json:"metamorphic_runs"`

	// Bound-certification stats over scenarios with a finite planner bound:
	// slack is predicted log2 bound minus actual log2 output size.
	BoundsCertified int      `json:"bounds_certified"`
	BoundsFinite    int      `json:"bounds_finite"`
	MinSlack        *float64 `json:"min_slack_log2,omitempty"`
	MaxSlack        *float64 `json:"max_slack_log2,omitempty"`
	MeanSlack       *float64 `json:"mean_slack_log2,omitempty"`

	Millis  float64         `json:"millis"`
	Results []oracle.Result `json:"results,omitempty"`

	// Fault-injection mode (-faults) summary: cells are (site, mode) pairs.
	FaultCells  int                  `json:"fault_cells,omitempty"`
	FaultPasses int                  `json:"fault_passes,omitempty"`
	FaultSkips  int                  `json:"fault_skips,omitempty"`
	Faults      []oracle.FaultResult `json:"faults,omitempty"`

	// Network mode (-network) summary: each scenario runs over a real
	// loopback socket through fdqd/fdqc and must match the in-process
	// execution and naive reference byte for byte, typed errors included.
	NetworkChecks  int                    `json:"network_checks,omitempty"`
	NetworkPasses  int                    `json:"network_passes,omitempty"`
	NetworkSkipped int                    `json:"network_skipped,omitempty"`
	Network        []oracle.NetworkResult `json:"network,omitempty"`

	// Chaos mode (-chaos) summary: the network matrix re-run behind the
	// chaos proxy, one cell per fault schedule. Every cell must end
	// byte-identical to the reference or in a typed error, with zero
	// leaked goroutines.
	ChaosChecks  int                  `json:"chaos_checks,omitempty"`
	ChaosPasses  int                  `json:"chaos_passes,omitempty"`
	ChaosSkipped int                  `json:"chaos_skipped,omitempty"`
	Chaos        []oracle.ChaosResult `json:"chaos,omitempty"`
}

func main() {
	tierFlag := flag.String("tier", "full", "catalog tier to run: small|full")
	outFlag := flag.String("out", "-", "report path, - for stdout")
	verbose := flag.Bool("v", false, "print per-scenario progress to stderr")
	stable := flag.Bool("stable", false, "zero all timings for a diff-stable committed report")
	faults := flag.Bool("faults", false, "run the fault-injection matrix instead of the standard one")
	network := flag.Bool("network", false, "run the network matrix (fdqd over a real socket) instead of the standard one")
	chaos := flag.Bool("chaos", false, "run the network matrix behind the chaos proxy's fault schedules")
	flag.Parse()

	tier, err := scenario.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *faults {
		runFaults(tier, *tierFlag, *outFlag, *verbose, *stable)
		return
	}
	if *network {
		runNetwork(tier, *tierFlag, *outFlag, *verbose, *stable)
		return
	}
	if *chaos {
		runChaos(tier, *tierFlag, *outFlag, *verbose, *stable)
		return
	}

	start := time.Now()
	cfgs := oracle.DefaultConfigs()
	rep := Report{Tier: *tierFlag}
	var slackSum float64
	for _, in := range scenario.Instances(tier) {
		res := oracle.CheckInstance(context.Background(), in, cfgs)
		rep.Scenarios++
		if res.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		for _, c := range res.Configs {
			rep.ConfigRuns++
			switch c.Status {
			case oracle.StatusPass:
				rep.ConfigPasses++
			case oracle.StatusSkip:
				rep.ConfigSkips++
			}
		}
		rep.MetamorphicRun += len(res.Metamorphic)
		if res.BoundCertified {
			rep.BoundsCertified++
		}
		if res.BoundSlack != nil {
			rep.BoundsFinite++
			s := *res.BoundSlack
			slackSum += s
			if rep.MinSlack == nil || s < *rep.MinSlack {
				rep.MinSlack = ptr(s)
			}
			if rep.MaxSlack == nil || s > *rep.MaxSlack {
				rep.MaxSlack = ptr(s)
			}
		}
		rep.Results = append(rep.Results, res)
		if *verbose {
			status := "ok"
			if !res.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "%-4s %-40s plan=%s out=%d %.0fms\n",
				status, res.Scenario, res.PlanAlgorithm, res.OutRows, res.Millis)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "     %s\n", f)
			}
		}
	}
	if rep.BoundsFinite > 0 {
		rep.MeanSlack = ptr(round3(slackSum / float64(rep.BoundsFinite)))
		*rep.MinSlack = round3(*rep.MinSlack)
		*rep.MaxSlack = round3(*rep.MaxSlack)
	}
	rep.Millis = float64(time.Since(start).Microseconds()) / 1000
	if *stable {
		rep.Millis = 0
		for i := range rep.Results {
			rep.Results[i].Millis = 0
			for j := range rep.Results[i].Configs {
				rep.Results[i].Configs[j].Millis = 0
			}
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *outFlag == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*outFlag, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "conformance: %d scenarios, %d passed, %d failed, %d config runs (%d skips), %d bounds certified\n",
		rep.Scenarios, rep.Passed, rep.Failed, rep.ConfigRuns, rep.ConfigSkips, rep.BoundsCertified)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// runFaults drives the fault-injection oracle over the tier's scenarios
// plus the fdq session-level harness, writes the report, and exits
// non-zero on any failure.
func runFaults(tier scenario.Tier, tierName, outPath string, verbose, stable bool) {
	start := time.Now()
	rep := Report{Tier: tierName}
	record := func(res oracle.FaultResult) {
		rep.Scenarios++
		if res.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		for _, c := range res.Checks {
			rep.FaultCells++
			switch c.Status {
			case oracle.StatusPass:
				rep.FaultPasses++
			case oracle.StatusSkip:
				rep.FaultSkips++
			}
		}
		rep.Faults = append(rep.Faults, res)
		if verbose {
			status := "ok"
			if !res.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "%-4s %-40s %d cells %.0fms\n", status, res.Scenario, len(res.Checks), res.Millis)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "     %s\n", f)
			}
		}
	}
	for _, in := range scenario.Instances(tier) {
		record(oracle.CheckFaultInstance(context.Background(), in))
	}
	record(oracle.CheckSessionFaults(context.Background()))
	rep.Millis = float64(time.Since(start).Microseconds()) / 1000
	if stable {
		rep.Millis = 0
		for i := range rep.Faults {
			rep.Faults[i].Millis = 0
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "conformance -faults: %d scenarios, %d passed, %d failed, %d cells (%d skips)\n",
		rep.Scenarios, rep.Passed, rep.Failed, rep.FaultCells, rep.FaultSkips)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// runNetwork drives every tier scenario across a real loopback socket:
// fdqd server, fdqc client, byte-identity against the in-process and
// naive executions, typed-error equivalence across the wire. It writes
// the report and exits non-zero on any failure.
func runNetwork(tier scenario.Tier, tierName, outPath string, verbose, stable bool) {
	start := time.Now()
	rep := Report{Tier: tierName}
	for _, in := range scenario.Instances(tier) {
		res := oracle.CheckNetworkInstance(context.Background(), in)
		rep.Scenarios++
		if res.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		if res.Skipped != "" {
			rep.NetworkSkipped++
		}
		for _, c := range res.Checks {
			rep.NetworkChecks++
			if c.Status == oracle.StatusPass {
				rep.NetworkPasses++
			}
		}
		rep.Network = append(rep.Network, res)
		if verbose {
			status := "ok"
			if !res.Pass {
				status = "FAIL"
			}
			if res.Skipped != "" {
				status = "skip"
			}
			fmt.Fprintf(os.Stderr, "%-4s %-40s %d checks %.0fms\n", status, res.Scenario, len(res.Checks), res.Millis)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "     %s\n", f)
			}
		}
	}
	rep.Millis = float64(time.Since(start).Microseconds()) / 1000
	if stable {
		rep.Millis = 0
		for i := range rep.Network {
			rep.Network[i].Millis = 0
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "conformance -network: %d scenarios, %d passed, %d failed, %d checks (%d scenarios skipped)\n",
		rep.Scenarios, rep.Passed, rep.Failed, rep.NetworkChecks, rep.NetworkSkipped)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// runChaos drives every tier scenario across the chaos matrix: the same
// loopback fdqd/fdqc pair as -network, but with a deterministic fault
// schedule injected between them per cell. It writes the report and
// exits non-zero on any failure.
func runChaos(tier scenario.Tier, tierName, outPath string, verbose, stable bool) {
	start := time.Now()
	rep := Report{Tier: tierName}
	for _, in := range scenario.Instances(tier) {
		res := oracle.CheckChaosInstance(context.Background(), in)
		rep.Scenarios++
		if res.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		if res.Skipped != "" {
			rep.ChaosSkipped++
		}
		for _, c := range res.Checks {
			rep.ChaosChecks++
			if c.Status == oracle.StatusPass {
				rep.ChaosPasses++
			}
		}
		rep.Chaos = append(rep.Chaos, res)
		if verbose {
			status := "ok"
			if !res.Pass {
				status = "FAIL"
			}
			if res.Skipped != "" {
				status = "skip"
			}
			fmt.Fprintf(os.Stderr, "%-4s %-40s %d cells %.0fms\n", status, res.Scenario, len(res.Checks), res.Millis)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "     %s\n", f)
			}
		}
	}
	rep.Millis = float64(time.Since(start).Microseconds()) / 1000
	if stable {
		rep.Millis = 0
		for i := range rep.Chaos {
			rep.Chaos[i].Millis = 0
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "conformance -chaos: %d scenarios, %d passed, %d failed, %d cells (%d scenarios skipped)\n",
		rep.Scenarios, rep.Passed, rep.Failed, rep.ChaosChecks, rep.ChaosSkipped)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func ptr(f float64) *float64 { return &f }

// round3 keeps the committed report diff-stable across float noise.
func round3(f float64) float64 { return math.Round(f*1000) / 1000 }
