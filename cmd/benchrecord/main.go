// Command benchrecord runs the paper's experiment workloads under
// testing.Benchmark and writes a BENCH_N.json snapshot, so the repo's perf
// trajectory is recorded machine-readably per PR (see DESIGN.md).
//
// Usage: go run ./cmd/benchrecord [-out BENCH_7.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/chainalg"
	"repro/internal/csma"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/paper"
	"repro/internal/query"
	"repro/internal/rel"
	"repro/internal/scenario"
	"repro/internal/smalg"
	"repro/internal/wcoj"
)

func main() {
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	flag.Parse()

	s := benchkit.NewSuite()

	record := func(name string, f func() error) {
		br := s.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("%-32s %12.0f ns/op %10d B/op %8d allocs/op\n",
			br.Name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
	}

	e1 := paper.Fig1Skew(512)
	record("E1/chain/N=512", func() error { _, _, err := chainalg.RunBest(e1); return err })
	record("E1/generic/N=512", func() error { _, _, err := wcoj.GenericJoin(e1, []int{1, 2, 0, 3}); return err })

	e2 := paper.DegreeTriangle(256, 8)
	record("E2/csma/d=8", func() error { _, _, err := csma.Run(e2, nil); return err })

	e3 := paper.TriangleProduct(16)
	record("E3/generic/m=16", func() error { _, _, err := wcoj.GenericJoin(e3, wcoj.DefaultOrder(e3)); return err })

	e4 := paper.M3Instance(32)
	record("E4/chain/N=32", func() error { _, _, err := chainalg.RunBest(e4); return err })

	e5, _ := paper.Fig4Instance(64)
	record("E5/sma", func() error { _, _, err := smalg.RunAuto(e5); return err })

	e6, _ := paper.Fig9Instance(64)
	record("E6/csma/N=64", func() error { _, _, err := csma.Run(e6, nil); return err })

	e11 := paper.Fig1QuasiProduct(64)
	record("E11/naive", func() error { naive.Evaluate(e11); return nil })

	// Engine layer: parallel partitioned execution vs sequential on the
	// same bound instance (the plan is cached after the first run, so both
	// measure execution, not LP solves).
	ctx := context.Background()
	engineBound := func(q *query.Q) *engine.Bound {
		p, err := engine.Prepare(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrecord:", err)
			os.Exit(1)
		}
		b, err := p.Bind(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrecord:", err)
			os.Exit(1)
		}
		return b
	}
	runWith := func(b *engine.Bound, workers int) func() error {
		return func() error {
			_, _, err := b.Run(ctx, &engine.Options{Workers: workers, MinParallelRows: 1})
			return err
		}
	}
	bE1 := engineBound(paper.Fig1Skew(1024))
	record("engine/E1/seq/N=1024", runWith(bE1, 1))
	record("engine/E1/par4/N=1024", runWith(bE1, 4))
	bE3 := engineBound(paper.TriangleProduct(24))
	record("engine/E3/seq/m=24", runWith(bE3, 1))
	record("engine/E3/par4/m=24", runWith(bE3, 4))
	bE12 := engineBound(paper.SimpleFDChain(5, 512))
	record("engine/E12/seq/N=512", runWith(bE12, 1))
	record("engine/E12/par4/N=512", runWith(bE12, 4))

	// Streaming early termination on a worst/* AGM-saturating product:
	// full materialization vs COUNT-only vs LIMIT-1 through the same bound
	// instance (warm plan and index caches — the delta is pure execution).
	bWorst := engineBound(scenario.AGMProduct(512, 1))
	seqOpts := &engine.Options{Workers: 1}
	record("limit/worst512/full", func() error {
		_, _, err := bWorst.Run(ctx, seqOpts)
		return err
	})
	record("limit/worst512/count", func() error {
		var c rel.CountSink
		_, err := bWorst.RunInto(ctx, seqOpts, &c)
		return err
	})
	record("limit/worst512/limit1", func() error {
		var c rel.CountSink
		_, err := bWorst.RunInto(ctx, seqOpts, rel.Limit(&c, 1))
		return err
	})

	// Skew family: the skew/zipf-hot adversarial instance (four hot hubs
	// colliding in one static hash partition at 4 workers). Wall clocks
	// compare the schedulers' overheads; on a 1-CPU recorder they cannot
	// show the scheduling gap, so the gap is recorded as modeled makespans
	// (per-split sequential timings + list scheduling, see
	// engine.ProfileSplits) — deterministic, and the quantity a W-core
	// machine's wall clock converges to.
	bSkew := engineBound(scenario.ZipfHot(1024, 2))
	skewOpts := func(static bool) *engine.Options {
		return &engine.Options{Workers: 4, MinParallelRows: 1, StaticPartition: static}
	}
	record("skew/zipf-hot/seq", runWith(bSkew, 1))
	record("skew/zipf-hot/static-w4", func() error {
		_, _, err := bSkew.Run(ctx, skewOpts(true))
		return err
	})
	record("skew/zipf-hot/morsel-w4", func() error {
		_, _, err := bSkew.Run(ctx, skewOpts(false))
		return err
	})
	makespan := func(static bool) float64 {
		// Median of repeated profiles: each split is timed sequentially, so
		// the model is immune to scheduler noise but not to timer noise.
		spans := make([]float64, 0, 7)
		for r := 0; r < 7; r++ {
			prof, err := bSkew.ProfileSplits(ctx, skewOpts(static), static)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrecord:", err)
				os.Exit(1)
			}
			spans = append(spans, float64(prof.Makespan(4, !static).Nanoseconds()))
		}
		sort.Float64s(spans)
		return spans[len(spans)/2]
	}
	msStatic, msMorsel := makespan(true), makespan(false)
	for _, e := range []struct {
		name string
		ns   float64
	}{
		{"skew/zipf-hot/makespan-static-w4", msStatic},
		{"skew/zipf-hot/makespan-morsel-w4", msMorsel},
	} {
		s.Results = append(s.Results, benchkit.BenchResult{Name: e.name, Iterations: 1, NsPerOp: e.ns})
		fmt.Printf("%-32s %12.0f ns/op (modeled 4-worker makespan)\n", e.name, e.ns)
	}
	fmt.Printf("skew/zipf-hot modeled speedup (static ÷ morsel at 4 workers): %.2f×\n", msStatic/msMorsel)
	if msStatic < 2*msMorsel {
		fmt.Fprintf(os.Stderr, "benchrecord: morsel scheduling models only %.2f× over static on skew/zipf-hot, want ≥ 2×\n",
			msStatic/msMorsel)
		os.Exit(1)
	}

	if err := s.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
