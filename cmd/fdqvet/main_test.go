package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFdqvet invokes run with captured output and returns (exit, stdout, stderr).
func runFdqvet(t *testing.T, args []string, dir string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, dir, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestList(t *testing.T) {
	code, out, _ := runFdqvet(t, []string{"-list"}, "")
	if code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	for _, name := range []string{"sinkcheck", "ctxloop", "lockguard", "errtaxonomy", "timerstop", "structalign"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := runFdqvet(t, []string{"-only", "nosuch", "./..."}, "")
	if code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %q", errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runFdqvet(t, []string{"-definitely-not-a-flag"}, ""); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	if code, _, _ := runFdqvet(t, []string{"./does-not-exist-xyzzy"}, ""); code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}

// TestCleanPackage runs the full suite over internal/lint itself from the
// module root: fdqvet must be clean on its own implementation.
func TestCleanPackage(t *testing.T) {
	code, out, errOut := runFdqvet(t, []string{"./internal/lint"}, filepath.Join("..", ".."))
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// TestFindingsExitOne builds a throwaway module whose one struct wastes
// enough padding to trip structalign, and requires exit status 1 with the
// finding printed.
func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module fdqvettmp\n\ngo 1.24\n")
	writeFile(t, dir, "padded.go", `package fdqvettmp

type padded struct {
	a bool
	b int64
	c bool
	d int64
	e bool
}

var _ = padded{}
`)
	code, out, errOut := runFdqvet(t, []string{"-only", "structalign", "./..."}, dir)
	if code != 1 {
		t.Fatalf("exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "fdqvet/structalign") {
		t.Errorf("stdout missing structalign finding:\n%s", out)
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing summary line: %q", errOut)
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
