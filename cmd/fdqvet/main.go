// Command fdqvet is the repository's invariant checker: a multichecker of
// custom static analyzers (internal/lint) that mechanically enforce the
// contracts this codebase leans on — the rel.Sink Push-return protocol,
// executor cancellation checks, "// guarded by <mu>" field annotations,
// the fdqc typed-error envelope round-trip, timer/cancel lifetimes, and
// struct layout on hot types. Each analyzer was seeded by a bug class that
// actually shipped here; fdqvet exists so the next instance is a build
// break, not a code-review catch.
//
// Usage:
//
//	go run ./cmd/fdqvet ./...             # the gating CI invocation
//	go run ./cmd/fdqvet -list             # what runs, and why
//	go run ./cmd/fdqvet -only sinkcheck,ctxloop ./internal/...
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad patterns,
// packages that do not compile). Deliberate exceptions are suppressed in
// the source with
//
//	//lint:ignore fdqvet/<analyzer> <reason>
//
// on (or on the line above) the flagged line; the reason is mandatory and
// an ignore without one is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], "", os.Stdout, os.Stderr))
}

// run is the whole program behind the os.Exit boundary: dir is the
// working directory for package loading ("" = current), and the return
// value is the process exit status.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "fdqvet: unknown analyzer %q (use -list)\n", name)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "fdqvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
