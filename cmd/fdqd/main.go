// Command fdqd serves an fdq catalog to network clients: it loads
// relations from a .fdq script, attaches a bound-governed admission
// Governor per tenant, and streams query results to concurrent fdqc
// clients over the length-prefixed frame protocol (see DESIGN.md, "Wire
// protocol").
//
// Usage:
//
//	fdqd -script data.fdq [-addr :7411] [-http :7412] [-drain 10s]
//	     [-gov "bound=24,policy=queue,rows=1000000"]
//	     [-tenant "paid:bound=30,policy=queue"] [-tenant "free:bound=16,policy=reject"]
//
// Governor specs are comma-separated key=value pairs: bound (max log2
// output bound), policy (reject|queue|degrade), rows, mem (bytes, K/M/G
// suffixes), degrade (LIMIT-k for policy=degrade), timeout (per query).
// -tenant prefixes a spec with "name:".
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight queries
// finish streaming up to -drain, then everything is force-cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/fdq"
	"repro/fdq/fdqd"
)

func main() {
	addr := flag.String("addr", ":7411", "query protocol listen address")
	httpAddr := flag.String("http", "", "observability sidecar listen address (/healthz, /metrics); empty = off")
	script := flag.String("script", "", "catalog source: a .fdq script (rel/row directives)")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-frame socket read/write deadline")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "drop connections idle between queries this long")
	batch := flag.Int("batch", 256, "rows per batch frame")
	maxConns := flag.Int("max-conns", 0, "server-wide open-connection cap; extras get a typed over-capacity refusal (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint carried in over-capacity refusals")
	frameTimeout := flag.Duration("frame-timeout", 0, "slow-loris guard: a started frame must finish within this (0 = io-timeout)")
	govSpec := flag.String("gov", "", "default tenant governor spec (key=value, comma-separated)")
	var tenantSpecs stringList
	flag.Var(&tenantSpecs, "tenant", "named tenant governor: \"name:spec\" (repeatable)")
	quiet := flag.Bool("q", false, "suppress connection logging")
	flag.Parse()

	if *script == "" {
		log.Fatal("fdqd: -script is required")
	}
	src, err := os.ReadFile(*script)
	if err != nil {
		log.Fatalf("fdqd: %v", err)
	}
	cat, _, err := fdq.ParseScript(string(src))
	if err != nil {
		log.Fatalf("fdqd: parse %s: %v", *script, err)
	}

	cfg := fdqd.Config{
		Catalog:      cat,
		IOTimeout:    *ioTimeout,
		IdleTimeout:  *idle,
		BatchRows:    *batch,
		MaxConns:     *maxConns,
		RetryAfter:   *retryAfter,
		FrameTimeout: *frameTimeout,
		Tenants:      map[string][]fdq.GovernorOption{},
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if cfg.DefaultGovernor, err = parseGovSpec(*govSpec); err != nil {
		log.Fatalf("fdqd: -gov: %v", err)
	}
	for _, ts := range tenantSpecs {
		name, spec, ok := strings.Cut(ts, ":")
		if !ok || name == "" {
			log.Fatalf("fdqd: -tenant %q: want \"name:spec\"", ts)
		}
		opts, err := parseGovSpec(spec)
		if err != nil {
			log.Fatalf("fdqd: -tenant %s: %v", name, err)
		}
		cfg.Tenants[name] = opts
	}

	srv, err := fdqd.New(cfg)
	if err != nil {
		log.Fatalf("fdqd: %v", err)
	}

	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("fdqd: http sidecar: %v", err)
			}
		}()
		defer hs.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	log.Printf("fdqd: serving %d relations on %s", len(cat.Relations()), *addr)

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatalf("fdqd: %v", err)
		}
	case s := <-sig:
		log.Printf("fdqd: %v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("fdqd: drain expired, forced shutdown: %v", err)
			os.Exit(1)
		}
		log.Print("fdqd: drained cleanly")
	}
}

type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error { *l = append(*l, s); return nil }

// parseGovSpec turns "bound=24,policy=queue,rows=1000000,mem=64M" into
// governor options. An empty spec is a valid, unlimited governor.
func parseGovSpec(spec string) ([]fdq.GovernorOption, error) {
	var opts []fdq.GovernorOption
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want key=value)", kv)
		}
		switch k {
		case "bound":
			b, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("bound: %w", err)
			}
			opts = append(opts, fdq.WithMaxLogBound(b))
		case "policy":
			switch v {
			case "reject":
				opts = append(opts, fdq.WithPolicy(fdq.PolicyReject))
			case "queue":
				opts = append(opts, fdq.WithPolicy(fdq.PolicyQueue))
			case "degrade":
				opts = append(opts, fdq.WithPolicy(fdq.PolicyDegrade))
			default:
				return nil, fmt.Errorf("policy: want reject|queue|degrade, got %q", v)
			}
		case "rows":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("rows: %w", err)
			}
			opts = append(opts, fdq.WithMaxRows(n))
		case "mem":
			n, err := parseBytes(v)
			if err != nil {
				return nil, fmt.Errorf("mem: %w", err)
			}
			opts = append(opts, fdq.WithMaxMemory(n))
		case "degrade":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("degrade: %w", err)
			}
			opts = append(opts, fdq.WithDegradeLimit(n))
		case "timeout":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("timeout: %w", err)
			}
			opts = append(opts, fdq.WithQueryTimeout(d))
		default:
			return nil, fmt.Errorf("unknown key %q", k)
		}
	}
	return opts, nil
}

func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}
