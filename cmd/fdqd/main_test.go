package main

import (
	"strings"
	"testing"

	"repro/fdq"
)

// The governor-spec grammar is operator-facing config; every key and
// every diagnostic is pinned here. Option values are opaque functions,
// so valid specs are checked by applying them to a real Governor.
func TestParseGovSpec(t *testing.T) {
	valid := []struct {
		spec string
		opts int
	}{
		{"", 0},
		{"   ", 0},
		{"bound=24", 1},
		{"bound=24,policy=queue", 2},
		{"policy=reject", 1},
		{"policy=degrade,degrade=100", 2},
		{"rows=1000000,mem=64M,timeout=2s", 3},
		{" bound=10 , policy=queue ", 2},
	}
	for _, tc := range valid {
		opts, err := parseGovSpec(tc.spec)
		if err != nil {
			t.Errorf("parseGovSpec(%q): %v", tc.spec, err)
			continue
		}
		if len(opts) != tc.opts {
			t.Errorf("parseGovSpec(%q) = %d options, want %d", tc.spec, len(opts), tc.opts)
		}
		fdq.NewGovernor(opts...) // options must apply cleanly
	}

	invalid := []struct {
		spec, diag string
	}{
		{"bound", "key=value"},
		{"bound=abc", "bound"},
		{"policy=maybe", "reject|queue|degrade"},
		{"rows=many", "rows"},
		{"mem=64X", "mem"},
		{"degrade=no", "degrade"},
		{"timeout=fast", "timeout"},
		{"color=red", "unknown key"},
	}
	for _, tc := range invalid {
		if _, err := parseGovSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.diag) {
			t.Errorf("parseGovSpec(%q) = %v, want error mentioning %q", tc.spec, err, tc.diag)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1024", 1024},
		{"4K", 4 << 10},
		{"64M", 64 << 20},
		{"2G", 2 << 30},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "K", "12Q", "x4M"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) succeeded", bad)
		}
	}
}

func TestStringListFlag(t *testing.T) {
	var l stringList
	for _, v := range []string{"a:bound=1", "b:policy=queue"} {
		if err := l.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.String(); got != "a:bound=1,b:policy=queue" {
		t.Fatalf("String() = %q", got)
	}
}
