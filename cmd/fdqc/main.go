// Command fdqc queries a running fdqd server. The query (vars / rel / fd /
// degree directives) comes from a .fdq script; row data in the script is
// ignored — the server's catalog supplies the relations — except in
// -verify mode, where the full script also runs in-process and the two
// results are compared byte for byte.
//
// Usage:
//
//	fdqc -addr localhost:7411 [-tenant name] [-count] [-alg auto] [-limit N] query.fdq
//	fdqc -addr localhost:7411 -verify full-scenario.fdq   # network vs in-process
//
// Rows print tab-separated in the deterministic result order. Typed
// server refusals (bound/rows/memory exceeded) exit with status 2 and a
// diagnostic; transport or query errors exit 1.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/fdq"
	"repro/fdq/fdqc"
)

func main() {
	addr := flag.String("addr", "localhost:7411", "fdqd server address")
	tenant := flag.String("tenant", "", "admission tenant (empty = server default)")
	count := flag.Bool("count", false, "COUNT-only: print the cardinality, stream no rows")
	verify := flag.Bool("verify", false, "also run the script in-process and byte-compare the results")
	alg := flag.String("alg", "", "override algorithm: auto|chain|sm|csma|generic|binary")
	limit := flag.Int("limit", 0, "LIMIT-k: stop after N rows")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none)")
	stats := flag.Bool("stats", false, "print server RunStats after the rows")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdqc [flags] query.fdq")
		os.Exit(1)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(1, err)
	}
	spec, err := fdqc.SpecFromScript(string(src))
	if err != nil {
		fatal(1, err)
	}
	if *alg != "" {
		spec.Alg = *alg
	}
	if *limit > 0 {
		spec.Limit = *limit
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c, err := fdqc.Dial(*addr, fdqc.WithTenant(*tenant))
	if err != nil {
		fatal(1, err)
	}
	defer c.Close()

	if *count {
		n, err := c.Count(ctx, spec)
		if err != nil {
			fatal(exitCode(err), err)
		}
		fmt.Println(n)
		return
	}

	got, st, err := c.Collect(ctx, spec)
	if err != nil {
		fatal(exitCode(err), err)
	}

	if *verify {
		want, err := inProcess(ctx, string(src), spec)
		if err != nil {
			fatal(1, fmt.Errorf("in-process reference: %w", err))
		}
		if err := compare(got, want); err != nil {
			fatal(1, fmt.Errorf("network result diverges from in-process: %w", err))
		}
		fmt.Fprintf(os.Stderr, "verify: %d rows byte-identical to in-process execution\n", len(got))
	}

	w := bufio.NewWriter(os.Stdout)
	row := make([]string, len(spec.Vars))
	for _, r := range got {
		for i, v := range r {
			row[i] = strconv.FormatInt(v, 10)
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	if err := w.Flush(); err != nil {
		fatal(1, fmt.Errorf("writing result: %w", err))
	}
	if *stats && st != nil {
		fmt.Fprintf(os.Stderr, "stats: alg=%s workers=%d rows=%d dur=%v queue=%v degraded=%v morsels=%d steals=%d\n",
			st.Algorithm, st.Workers, st.Rows, st.Duration.Round(time.Microsecond),
			st.QueueWait.Round(time.Microsecond), st.Degraded, st.Morsels, st.Steals)
	}
}

// inProcess runs the script's query against the script's own rows through
// the public in-process API — the reference the network result must match.
func inProcess(ctx context.Context, src string, spec *fdqc.QuerySpec) ([][]fdq.Value, error) {
	cat, _, err := fdq.ParseScript(src)
	if err != nil {
		return nil, err
	}
	q, err := spec.Query() // same lowered query the server ran
	if err != nil {
		return nil, err
	}
	return fdq.NewSession(cat).Collect(ctx, q)
}

func compare(got, want [][]fdq.Value) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d rows vs %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Errorf("row %d: width %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return fmt.Errorf("row %d col %d: %d vs %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}

func exitCode(err error) int {
	if errors.Is(err, fdq.ErrBoundExceeded) || errors.Is(err, fdq.ErrRowsExceeded) || errors.Is(err, fdq.ErrMemoryExceeded) {
		return 2
	}
	return 1
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "fdqc:", err)
	os.Exit(code)
}
