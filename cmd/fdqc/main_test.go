package main

import (
	"context"
	"errors"
	"testing"

	"repro/fdq"
	"repro/fdq/fdqc"
)

const triangleScript = `
vars x y z
rel R(x, y)
rel S(y, z)
rel T(z, x)
row R 1 2
row R 2 3
row S 2 3
row S 3 1
row T 3 1
row T 1 2
`

func TestInProcessReference(t *testing.T) {
	spec, err := fdqc.SpecFromScript(triangleScript)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inProcess(context.Background(), triangleScript, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]fdq.Value{{1, 2, 3}, {2, 3, 1}}
	if err := compare(got, want); err != nil {
		t.Fatalf("triangle result: %v (got %v)", err, got)
	}
	if err := compare(got, [][]fdq.Value{{1, 2, 3}}); err == nil {
		t.Fatal("compare accepted a row-count mismatch")
	}
	if err := compare(got, [][]fdq.Value{{1, 2, 3}, {2, 3, 9}}); err == nil {
		t.Fatal("compare accepted a value mismatch")
	}
	if err := compare([][]fdq.Value{{1}}, [][]fdq.Value{{1, 2}}); err == nil {
		t.Fatal("compare accepted a width mismatch")
	}
}

func TestInProcessBadScript(t *testing.T) {
	spec := &fdqc.QuerySpec{Vars: []string{"x"}, Rels: []fdqc.RelSpec{{Name: "R", Vars: []string{"x"}}}}
	if _, err := inProcess(context.Background(), "not a script", spec); err == nil {
		t.Fatal("malformed script did not fail")
	}
}

// Typed governed refusals exit 2 (an admission decision the caller can
// script against); everything else exits 1.
func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&fdq.BoundExceededError{LogBound: 30, Budget: 10}, 2},
		{&fdq.RowsExceededError{Limit: 5}, 2},
		{&fdq.MemoryExceededError{Limit: 1, Used: 2}, 2},
		{errors.New("transport died"), 1},
		{context.Canceled, 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
