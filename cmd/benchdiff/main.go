// Command benchdiff compares two BENCH_*.json snapshots (written by
// cmd/benchrecord) and prints per-benchmark ns/op and allocs/op deltas.
// With a positive -threshold it exits non-zero when any benchmark present
// in both snapshots regressed its ns/op by more than that fraction, so CI
// can surface perf cliffs against the committed baseline.
//
// Usage: go run ./cmd/benchdiff [-threshold 0.10] OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchkit"
)

func main() {
	threshold := flag.Float64("threshold", 0.10,
		"fail (exit 1) when some benchmark's ns/op regresses by more than this fraction; 0 disables gating")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	oldS, err := benchkit.ReadJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newS, err := benchkit.ReadJSON(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := map[string]benchkit.BenchResult{}
	for _, r := range oldS.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("%-32s %14s %14s %8s   %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	regressed := false
	seen := map[string]bool{}
	for _, nr := range newS.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-32s %14s %14.0f %8s   %10s %10d %8s   (new)\n",
				nr.Name, "-", nr.NsPerOp, "-", "-", nr.AllocsPerOp, "-")
			continue
		}
		seen[nr.Name] = true
		dns := ratio(nr.NsPerOp, or.NsPerOp)
		dal := ratio(float64(nr.AllocsPerOp), float64(or.AllocsPerOp))
		mark := ""
		if *threshold > 0 && dns > *threshold {
			mark = "   REGRESSED"
			regressed = true
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%%   %10d %10d %+7.1f%%%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, 100*dns,
			or.AllocsPerOp, nr.AllocsPerOp, 100*dal, mark)
	}
	for _, or := range oldS.Results {
		if !seen[or.Name] {
			fmt.Printf("%-32s %14.0f %14s %8s   %10d %10s %8s   (removed)\n",
				or.Name, or.NsPerOp, "-", "-", or.AllocsPerOp, "-", "-")
		}
	}
	if regressed {
		fmt.Printf("\nsome benchmark regressed ns/op by more than %.0f%%\n", 100**threshold)
		os.Exit(1)
	}
}

// ratio returns (new-old)/old, treating a zero old measurement as no change
// (alloc counts can legitimately be 0).
func ratio(newV, oldV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}
