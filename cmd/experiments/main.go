// Command experiments regenerates every experiment table of the
// reproduction (E1–E12 in DESIGN.md / EXPERIMENTS.md), printing paper
// expectation vs. measured value for each bound, classification, and
// algorithm-scaling claim in the paper.
//
// Usage:
//
//	experiments [E1 E2 ...]   # default: all
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/benchkit"
	"repro/internal/bounds"
	"repro/internal/chainalg"
	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/naive"
	"repro/internal/paper"
	"repro/internal/query"
	"repro/internal/rel"
	"repro/internal/smalg"
	"repro/internal/varset"
	"repro/internal/wcoj"
)

func main() {
	all := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11, "E12": e12,
		"E13": e13,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	args := os.Args[1:]
	if len(args) == 0 {
		args = order
	}
	for _, a := range args {
		f, ok := all[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(1)
		}
		f()
	}
}

func logb(x float64) float64 { return math.Log2(x) }

// E1: Eq. (1) / Fig. 1 / Examples 5.5 & 5.8 — UDF query: chain algorithm is
// Õ(N^{3/2}) while FD-blind WCOJ is Ω(N²) on the skew instance.
func e1() {
	t := benchkit.NewTable("E1 — Fig.1 UDF query: bounds (log2, units of n = log N)",
		"N", "AGM", "AGM(Q⁺)", "GLVV/LLP", "best chain", "|Q| measured")
	for _, N := range []int{64, 256} {
		q := paper.Fig1QuasiProduct(N)
		a := core.Analyze(q)
		n := logb(float64(q.Rels[0].Len()))
		out := naive.Evaluate(q)
		t.Row(q.Rels[0].Len(), a.LogAGM/n, a.LogAGMClosure/n, a.LogLLP/n, a.LogChain/n, out.Len())
	}
	fmt.Println(t)

	t2 := benchkit.NewTable("E1 — skew instance work (Example 5.8): chain vs FD-blind generic join",
		"N", "chain work", "generic-join work", "chain time", "generic time")
	var ns, chainWork, gjWork []float64
	for _, N := range []int{128, 256, 512, 1024} {
		q := paper.Fig1Skew(N)
		var cw, gw int
		var cd, gd time.Duration
		cd = benchkit.Time(func() {
			_, st, err := chainalg.RunBest(q)
			must(err)
			cw = st.TuplesVisited + st.Probes
		})
		gd = benchkit.Time(func() {
			_, st, err := wcoj.GenericJoin(q, []int{1, 2, 0, 3})
			must(err)
			gw = st.Extensions + st.Lookups
		})
		ns = append(ns, float64(N))
		chainWork = append(chainWork, float64(cw))
		gjWork = append(gjWork, float64(gw))
		t2.Row(N, cw, gw, cd, gd)
	}
	fmt.Println(t2)
	fmt.Printf("empirical exponents (paper: chain ≤ 1.5 via Õ(N^1.5); generic 2.0 via Ω(N²)): chain %.2f, generic %.2f\n\n",
		benchkit.Slope(ns, chainWork), benchkit.Slope(ns, gjWork))
}

// E2: Eq. (2) / Sec. 5.3 — degree-bounded triangle: CLLP bound
// min(N^{3/2}, N·d) and CSMA respecting it.
func e2() {
	t := benchkit.NewTable("E2 — degree-bounded triangle (Eq. 2): bound min(N^{3/2}, N·d)",
		"N≈", "d", "LLP (no degrees)", "CLLP (degrees)", "min(1.5n, n+log d)", "|Q|", "CSMA time")
	for _, d := range []int{2, 4, 8, 16} {
		q := paper.DegreeTriangle(512, d)
		n := logb(float64(q.Rels[0].Len()))
		llp := bounds.LLP(q)
		cllp := bounds.CLLPFromQuery(q)
		lv, _ := llp.LogBound.Float64()
		cv, _ := cllp.LogBound.Float64()
		want := math.Min(1.5*n, n+logb(float64(d)))
		var out int
		dur := benchkit.Time(func() {
			o, _, err := csma.Run(q, nil)
			must(err)
			out = o.Len()
		})
		t.Row(q.Rels[0].Len(), d, lv, cv, want, out, dur)
	}
	fmt.Println(t)

	t2 := benchkit.NewTable("E2b — colored formulation (Eq. 2 with colors C1, C2)",
		"N≈", "d", "GLVV (colored)", "n + log d", "|Q| (x,y,z proj)")
	for _, d := range []int{2, 4} {
		q := paper.ColoredTriangle(256, d)
		llp := bounds.LLP(q)
		lv, _ := llp.LogBound.Float64()
		n := logb(float64(q.Rels[2].Len()))
		out := naive.Evaluate(q).Project(q.Vars("x", "y", "z"))
		t.Row(q.Rels[2].Len(), d, lv, n+logb(float64(d)), out.Len())
		_ = out
		t2.Row(q.Rels[2].Len(), d, lv, n+logb(float64(d)), out.Len())
	}
	fmt.Println(t2)
}

// E3: Eq. (4) / Theorem 2.1 — AGM bound tight on product instances;
// Generic-Join is worst-case optimal without FDs.
func e3() {
	t := benchkit.NewTable("E3 — triangle AGM bound (Eq. 4) and tightness on product instances",
		"m (domain)", "N=m²", "AGM = N^{3/2}", "|Q| = m³", "generic-join time")
	for _, m := range []int{4, 8, 16} {
		q := paper.TriangleProduct(m)
		a := bounds.AGM(q)
		var out int
		dur := benchkit.Time(func() {
			o, _, err := wcoj.GenericJoin(q, wcoj.DefaultOrder(q))
			must(err)
			out = o.Len()
		})
		t.Row(m, m*m, a.Bound(), out, dur)
	}
	fmt.Println(t)
}

// E4: Example 5.12 / Fig. 3 — M3: chain bound N² tight; coatomic cover
// bound N^{3/2} invalid (non-normal lattice).
func e4() {
	t := benchkit.NewTable("E4 — M3 (Example 5.12): N² is tight; co-atomic N^{3/2} is NOT a bound",
		"N", "GLVV/LLP", "chain", "coatomic (invalid)", "|Q| = N²", "chain-alg time")
	for _, N := range []int{8, 16, 32} {
		q := paper.M3Instance(N)
		a := core.Analyze(q)
		var out int
		dur := benchkit.Time(func() {
			o, _, err := chainalg.RunBest(q)
			must(err)
			out = o.Len()
		})
		t.Row(N, benchkit.Pow2(a.LogLLP), benchkit.Pow2(a.LogChain), benchkit.Pow2(a.LogCoatomic), out, dur)
	}
	fmt.Println(t)
}

// E5: Fig. 4 / Examples 5.18, 5.20, 5.25 — chain bound N^{3/2} beaten by
// SM bound N^{4/3}; SMA runs within it.
func e5() {
	t := benchkit.NewTable("E5 — Fig.4 query: chain N^{3/2} vs SM/GLVV N^{4/3} (Examples 5.18/5.20)",
		"N=m³", "chain bound", "GLVV=SM bound", "|Q| = m⁴", "SMA time", "chain-alg time")
	var ns, smWork []float64
	for _, m := range []int{3, 4, 5} {
		q, mm := paper.Fig4Instance(m * m * m)
		a := core.Analyze(q)
		var out int
		smDur := benchkit.Time(func() {
			o, _, err := smalg.RunAuto(q)
			must(err)
			out = o.Len()
		})
		chDur := benchkit.Time(func() {
			_, _, err := chainalg.RunBest(q)
			must(err)
		})
		N := float64(q.Rels[0].Len())
		ns = append(ns, N)
		smWork = append(smWork, float64(out))
		t.Row(q.Rels[0].Len(), benchkit.Pow2(a.LogChain), benchkit.Pow2(a.LogLLP), out, smDur, chDur)
		_ = mm
	}
	fmt.Println(t)
	fmt.Printf("output exponent vs N (paper: 4/3 ≈ 1.33): %.2f\n\n", benchkit.Slope(ns, smWork))
}

// E6: Fig. 9 / Example 5.31 — no SM proof exists; CSMA computes the query
// within ~N^{3/2}.
func e6() {
	{
		q, _ := paper.Fig9Instance(4)
		llp := bounds.LLP(q)
		p := smalg.FindProof(llp)
		hco, _ := bounds.CoatomicHypergraph(q)
		pAny := smalg.FindProofAny(llp, q.LogSizes(), hco.CoverPolytope().Vertices())
		fmt.Printf("E6 — Fig.9: SM proof exists (paper: NO): direct=%v any-dual=%v\n\n", p != nil, pAny != nil)
	}
	t := benchkit.NewTable("E6 — Fig.9 query via CSMA (Example 5.31 continued)",
		"N per input", "OPT = N^{3/2}", "|Q|", "CSMA time", "branches", "restarts")
	var ns, outs []float64
	for _, n := range []int{16, 36, 64} {
		q, _ := paper.Fig9Instance(n)
		var out int
		var st *csma.Stats
		dur := benchkit.Time(func() {
			o, s, err := csma.Run(q, nil)
			must(err)
			out = o.Len()
			st = s
		})
		ns = append(ns, float64(q.Rels[0].Len()))
		outs = append(outs, float64(out))
		t.Row(q.Rels[0].Len(), benchkit.Pow2(st.OPT), out, dur, st.Branches, st.Restarts)
	}
	fmt.Println(t)
	fmt.Printf("output exponent vs N (paper: 3/2): %.2f\n\n", benchkit.Slope(ns, outs))
}

// E7: Fig. 5 / Example 5.10 — maximal chains have isolated vertices; the
// Corollary 5.9 chain 0̂ ≺ x ≺ 1̂ gives the tight N².
func e7() {
	q := paper.Fig5Instance(32)
	l := q.Lattice()
	mc := lattice.Chain{l.Bottom, l.Index(q.Vars("z")), l.Index(q.Vars("x", "z")), l.Top}
	r1 := bounds.ChainBound(q, mc)
	best := bounds.BestChainBound(q, 64)
	out, st, err := chainalg.RunBest(q)
	must(err)
	t := benchkit.NewTable("E7 — Fig.5: R(x), S(y), z=f(x,y) (Example 5.10)",
		"chain", "bound", "|Q|")
	t.Row("0̂≺z≺xz≺1̂ (maximal)", r1.Bound(), "-")
	t.Row(fmt.Sprintf("Cor 5.9 chain (len %d)", len(best.Chain)), best.Bound(), out.Len())
	fmt.Println(t)
	_ = st
}

// E8: Sec. 2 "Closure" — simple keys are handled by AGM(Q⁺); composite keys
// are not.
func e8() {
	t := benchkit.NewTable("E8 — closure bounds (Sec. 2)",
		"query", "AGM", "AGM(Q⁺)", "GLVV/LLP", "|Q|")
	{
		q := paper.FourCycleWithKey(16)
		for i := 0; i < 240; i++ {
			q.Rels[1].Add(paper.Value(1000+i), paper.Value(1000+i))
			q.Rels[2].Add(paper.Value(1000+i), paper.Value(1000+i))
		}
		a := core.Analyze(q)
		t.Row("4-cycle, key y→z", benchkit.Pow2(a.LogAGM), benchkit.Pow2(a.LogAGMClosure),
			benchkit.Pow2(a.LogLLP), naive.Evaluate(q).Len())
	}
	{
		q := paper.CompositeKey(8, 4096)
		a := core.Analyze(q)
		t.Row("R(x),S(y),T(x,y,z), key xy→z", benchkit.Pow2(a.LogAGM), benchkit.Pow2(a.LogAGMClosure),
			benchkit.Pow2(a.LogLLP), naive.Evaluate(q).Len())
	}
	fmt.Println(t)
}

// E9: Fig. 10 — lattice classification of every named lattice in the paper.
func e9() {
	t := benchkit.NewTable("E9 — lattice classification (Fig. 10 regions)",
		"lattice", "|L|", "distributive", "modular", "normal", "M3-top", "good SM proof")
	row := func(name string, q *query.Q) {
		a := core.Analyze(q)
		t.Row(name, a.LatticeSize, a.Distributive, a.Modular, a.Normal, a.HasM3Top, a.SMProofExists)
	}
	row("Boolean (triangle)", paper.TriangleProduct(3))
	row("Fig.1 running example", paper.Fig1QuasiProduct(16))
	row("M3 (Fig.3)", paper.M3Instance(8))
	q4, _ := paper.Fig4Instance(27)
	row("Fig.4", q4)
	row("Fig.5 (z=f(x,y))", paper.Fig5Instance(8))
	q9, _ := paper.Fig9Instance(16)
	row("Fig.9", q9)
	row("simple FDs (chain)", paper.SimpleFDChain(4, 16))
	// N5 as a standalone lattice (no instance): report its structure only.
	n5 := lattice.FromFamily(3, []varset.Set{varset.Empty, varset.Of(0), varset.Of(0, 1), varset.Of(2), varset.Of(0, 1, 2)})
	t.Row("N5 (structure only)", n5.Size(), n5.IsDistributive(), n5.IsModular(), "-", n5.HasM3Top(), "-")
	fmt.Println(t)
}

// E10: Fig. 1 labels / Lemma 3.9 — LLP primal/dual values of the running
// example.
func e10() {
	q := paper.Fig1QuasiProduct(256)
	llp := bounds.LLP(q)
	n := logb(256)
	t := benchkit.NewTable("E10 — Fig.1 optimal polymatroid h* (units of n; figure labels)",
		"element", "h*/n")
	for i, e := range llp.Lat.Elems {
		v, _ := llp.H[i].Float64()
		t.Row(e.Format(q.Names), v/n)
	}
	fmt.Println(t)
	t2 := benchkit.NewTable("E10b — dual weights (output inequality coefficients)",
		"relation", "w*")
	for j, w := range llp.W {
		t2.Row(q.Rels[j].Name, w.RatString())
	}
	fmt.Println(t2)
}

// E11: Examples 3.8 / 4.6 / Lemma 4.5 — quasi-product instances materialize
// normal polymatroids.
func e11() {
	t := benchkit.NewTable("E11 — quasi-product materialization (Lemma 4.5)",
		"N", "GLVV bound", "|Q| on quasi-product instance", "ratio")
	for _, N := range []int{16, 64, 256} {
		q := paper.Fig1QuasiProduct(N)
		a := core.Analyze(q)
		out := naive.Evaluate(q).Len()
		t.Row(q.Rels[0].Len(), benchkit.Pow2(a.LogLLP), out, float64(out)/benchkit.Pow2(a.LogLLP))
	}
	fmt.Println(t)
}

// E12: Prop. 3.2 / Cor. 5.15/5.17 — simple FDs: distributive lattice, chain
// bound tight, chain algorithm worst-case optimal.
func e12() {
	t := benchkit.NewTable("E12 — simple FDs (Cor. 5.17)",
		"k vars", "N", "distributive", "LLP", "chain bound", "|Q|", "chain-alg time")
	for _, k := range []int{3, 4, 5} {
		q := paper.SimpleFDChain(k, 64)
		a := core.Analyze(q)
		var out int
		dur := benchkit.Time(func() {
			o, _, err := chainalg.RunBest(q)
			must(err)
			out = o.Len()
		})
		t.Row(k, 64, a.Distributive, benchkit.Pow2(a.LogLLP), benchkit.Pow2(a.LogChain), out, dur)
	}
	fmt.Println(t)
}

// E13: engine layer — the cost-based planner's choice per workload, and
// parallel partitioned execution vs. sequential on the larger instances.
func e13() {
	t := benchkit.NewTable("E13 — engine planner decisions (decision table in DESIGN.md)",
		"workload", "plan", "predicted log2 bound", "|Q|")
	prow := func(name string, q *query.Q) {
		out, st, err := core.ExecuteOptions(context.Background(), q,
			&engine.Options{Workers: 1})
		must(err)
		t.Row(name, string(st.Plan.Algorithm), st.Plan.LogBound, out.Len())
	}
	prow("Fig.1 N=64 (simple-ish FDs)", paper.Fig1QuasiProduct(64))
	prow("Fig.4 N=125 (SM beats chain)", mustQ(paper.Fig4Instance(125)))
	prow("Fig.9 N=64 (no SM proof)", mustQ(paper.Fig9Instance(64)))
	prow("degree triangle d=2", paper.DegreeTriangle(512, 2))
	prow("triangle product m=16 (no FDs)", paper.TriangleProduct(16))
	prow("triangle product m=2 (tiny)", paper.TriangleProduct(2))
	fmt.Println(t)

	t2 := benchkit.NewTable("E13b — parallel partitioned execution vs sequential",
		"workload", "plan", "workers", "seq time", "par time", "speedup", "|Q| identical")
	ctx := context.Background()
	cmp := func(name string, q *query.Q) {
		p, err := engine.Prepare(q)
		must(err)
		b, err := p.Bind(nil)
		must(err)
		var seqOut, parOut *rel.Relation
		var stPar *engine.Stats
		// Warm both paths so the timings measure execution — not LP solves,
		// the one-time partition split, or cold per-part index caches.
		_, _, err = b.Run(ctx, &engine.Options{Workers: 1})
		must(err)
		_, _, err = b.Run(ctx, &engine.Options{Workers: 4, MinParallelRows: 1})
		must(err)
		seqDur := benchkit.Time(func() {
			o, _, err := b.Run(ctx, &engine.Options{Workers: 1})
			must(err)
			seqOut = o
		})
		// Explicit pool size: partitioned execution also cuts total work on
		// superlinear algorithms, so it can win even on a single core.
		parDur := benchkit.Time(func() {
			o, st, err := b.Run(ctx, &engine.Options{Workers: 4, MinParallelRows: 1})
			must(err)
			parOut, stPar = o, st
		})
		same := seqOut.Len() == parOut.Len()
		for i := 0; same && i < seqOut.Len(); i++ {
			a, bb := seqOut.Row(i), parOut.Row(i)
			for c := range a {
				if a[c] != bb[c] {
					same = false
					break
				}
			}
		}
		t2.Row(name, string(stPar.Plan.Algorithm), stPar.Workers, seqDur, parDur,
			float64(seqDur)/float64(parDur), same)
	}
	cmp("E1 skew N=1024 (chain)", paper.Fig1Skew(1024))
	cmp("E3 triangle m=24 (generic)", paper.TriangleProduct(24))
	cmp("E12 simple FDs k=5 N=512 (chain)", paper.SimpleFDChain(5, 512))
	fmt.Println(t2)
}

func mustQ[T any](q *query.Q, _ T) *query.Q { return q }

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
