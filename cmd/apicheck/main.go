// Command apicheck records and verifies the exported API surface of a
// package — a lightweight gorelease-style guard for the public fdq
// package: CI regenerates the symbol list from source and diffs it against
// the checked-in api.txt, so any change to the public surface (added,
// removed, or re-typed symbol) must be made deliberately, in the same
// commit that updates the snapshot.
//
//	apicheck -dir fdq -write api.txt                     # record one package
//	apicheck -dir fdq,fdq/fdqc,fdq/fdqd -check api.txt   # guard several
//
// The listing is deterministic: one line per exported symbol (functions
// and methods with full signatures, types, exported struct fields, consts
// and vars), whitespace-normalized and sorted. With several directories
// (comma-separated), each line is prefixed by its package directory.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", "fdq", "package directory to inspect (comma-separated to guard several)")
	write := flag.String("write", "", "write the API listing to this file")
	check := flag.String("check", "", "diff the API listing against this file; exit 1 on mismatch")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "apicheck: exactly one of -write or -check is required")
		os.Exit(2)
	}

	dirs := strings.Split(*dir, ",")
	var lines []string
	for _, d := range dirs {
		ls, err := apiLines(d)
		if err != nil {
			fatal(err)
		}
		if len(dirs) > 1 {
			for i := range ls {
				ls[i] = d + ": " + ls[i]
			}
		}
		lines = append(lines, ls...)
	}
	sort.Strings(lines)
	listing := "# Exported API of ./" + strings.Join(dirs, ", ./") + " — regenerate with: go run ./cmd/apicheck -dir " +
		*dir + " -write api.txt\n" + strings.Join(lines, "\n") + "\n"

	if *write != "" {
		if err := os.WriteFile(*write, []byte(listing), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("apicheck: wrote %d symbols to %s\n", len(lines), *write)
		return
	}

	wantBytes, err := os.ReadFile(*check)
	if err != nil {
		fatal(err)
	}
	want := strings.Split(strings.TrimRight(string(wantBytes), "\n"), "\n")
	if len(want) > 0 && strings.HasPrefix(want[0], "#") {
		want = want[1:]
	}
	if diff := diffLines(want, lines); len(diff) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: exported API of ./%s differs from %s:\n", *dir, *check)
		for _, d := range diff {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		fmt.Fprintf(os.Stderr, "apicheck: if the change is intentional, regenerate with: go run ./cmd/apicheck -dir %s -write %s\n", *dir, *check)
		os.Exit(1)
	}
	fmt.Printf("apicheck: %d symbols match %s\n", len(lines), *check)
}

// apiLines renders one sorted line per exported symbol of the package in dir.
func apiLines(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders the exported symbols of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return nil
		}
		clone := *d
		clone.Body = nil
		clone.Doc = nil
		return []string{render(fset, &clone)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				out = append(out, typeLines(fset, s)...)
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					line := kw + " " + name.Name
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// typeLines renders an exported type: structs and interfaces become one
// header line plus one line per exported member (unexported members stay
// private to the diff); everything else prints its full definition.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + s.Name.Name + " struct"}
		for _, f := range t.Fields.List {
			for _, n := range f.Names {
				if n.IsExported() {
					out = append(out, "field "+s.Name.Name+"."+n.Name+" "+render(fset, f.Type))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + s.Name.Name + " interface"}
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() {
					out = append(out, "method "+s.Name.Name+"."+n.Name+render(fset, m.Type))
				}
			}
		}
		return out
	default:
		eq := " "
		if s.Assign.IsValid() {
			eq = " = "
		}
		return []string{"type " + s.Name.Name + eq + render(fset, s.Type)}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (functions have no receiver and always pass).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// render prints an AST node and collapses it onto one whitespace-normalized
// line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		fatal(err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// diffLines reports a minimal line-set difference (order-insensitive, both
// inputs sorted).
func diffLines(want, got []string) []string {
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	var out []string
	for _, w := range want {
		if !gotSet[w] {
			out = append(out, "- "+w)
		}
	}
	for _, g := range got {
		if !wantSet[g] {
			out = append(out, "+ "+g)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apicheck:", err)
	os.Exit(1)
}
