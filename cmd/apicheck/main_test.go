package main

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func TestAPILines(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

const Version = "1"
const hidden = "2"

var Debug bool

// Widget is exported with a mixed field set.
type Widget struct {
	Name string
	size int
}

// Sizer is an exported interface.
type Sizer interface {
	Size() int
	grow(by int)
}

// Alias is an alias declaration.
type Alias = Widget

type internal struct{}

func New(name string) *Widget { return &Widget{Name: name} }

func helper() {}

func (w *Widget) Size() int { return len(w.Name) }

func (i internal) Size() int { return 0 }
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file must be filtered out of the surface.
	if err := os.WriteFile(filepath.Join(dir, "sample_test.go"), []byte("package sample\n\nfunc TestOnly() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	lines, err := apiLines(dir)
	if err != nil {
		t.Fatalf("apiLines: %v", err)
	}
	got := map[string]bool{}
	for _, l := range lines {
		got[l] = true
	}
	for _, want := range []string{
		`const Version`,
		`var Debug bool`,
		`type Widget struct`,
		`field Widget.Name string`,
		`type Sizer interface`,
		`method Sizer.Sizefunc() int`,
		`type Alias = Widget`,
		`func New(name string) *Widget`,
		`func (w *Widget) Size() int`,
	} {
		if !got[want] {
			t.Errorf("missing line %q in:\n%v", want, lines)
		}
	}
	for _, absent := range []string{"hidden", "size", "grow", "internal", "helper", "TestOnly"} {
		for _, l := range lines {
			if containsWord(l, absent) {
				t.Errorf("unexported/test symbol %q leaked into line %q", absent, l)
			}
		}
	}
	if !sort.StringsAreSorted(lines) {
		t.Error("apiLines output is not sorted")
	}
}

// containsWord reports whether l mentions sym as a standalone token
// (avoiding false hits like "Size" inside "Sizer").
func containsWord(l, sym string) bool {
	for i := 0; i+len(sym) <= len(l); i++ {
		if l[i:i+len(sym)] != sym {
			continue
		}
		beforeOK := i == 0 || !isWordByte(l[i-1])
		after := i + len(sym)
		afterOK := after == len(l) || !isWordByte(l[after])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func TestAPILinesBadDir(t *testing.T) {
	if _, err := apiLines("/does-not-exist-xyzzy"); err == nil {
		t.Fatal("apiLines of a nonexistent directory succeeded")
	}
}

func TestDiffLines(t *testing.T) {
	want := []string{"func A()", "func B()", "func C()"}
	got := []string{"func A()", "func C()", "func D()"}
	diff := diffLines(want, got)
	expect := []string{"- func B()", "+ func D()"}
	if !reflect.DeepEqual(diff, expect) {
		t.Errorf("diffLines = %v, want %v", diff, expect)
	}
	if d := diffLines(want, want); len(d) != 0 {
		t.Errorf("identical listings diffed: %v", d)
	}
}
