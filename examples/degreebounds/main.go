// degreebounds reproduces Sec. 1.1 "Known Frequencies" / Eq. (2): the
// triangle query over a graph with bounded in/out-degree. Declared degree
// bounds flow into the conditional LLP (Sec. 5.3.1), dropping the size
// bound from N^{3/2} to min(N^{3/2}, N·d), and CSMA exploits them.
//
// Run: go run ./examples/degreebounds
package main

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/csma"
	"repro/internal/paper"
)

func main() {
	const n = 512
	fmt.Println("triangle with R out/in-degree ≤ d, |R|=|S|=|T|≈", n)
	for _, d := range []int{2, 4, 8, 16, 32} {
		q := paper.DegreeTriangle(n, d)
		nn := math.Log2(float64(q.Rels[0].Len()))
		llp := bounds.LLP(q)
		cllp := bounds.CLLPFromQuery(q)
		lv, _ := llp.LogBound.Float64()
		cv, _ := cllp.LogBound.Float64()
		out, st, err := csma.Run(q, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("d=%2d: GLVV (no degree info) = 2^%.1f, CLLP = 2^%.1f "+
			"(min(1.5n, n+log d) = 2^%.1f), |Q| = %d, CSMA branches = %d\n",
			d, lv, cv, math.Min(1.5*nn, nn+math.Log2(float64(d))), out.Len(), st.Branches)
	}

	fmt.Println("\ncolored formulation (Eq. 2) — the same bound via guarded FDs:")
	for _, d := range []int{2, 4} {
		q := paper.ColoredTriangle(n/2, d)
		llp := bounds.LLP(q)
		lv, _ := llp.LogBound.Float64()
		fmt.Printf("d=%2d: GLVV(colored query) = 2^%.1f\n", d, lv)
	}
}
