// latticelab classifies every lattice the paper names (Figs. 1, 3, 4, 5,
// 7, 9 plus N5 and the Boolean algebra) along the Fig. 10 taxonomy:
// distributive ⊂ normal, lattices with tight chain bounds, lattices with
// (good) SM proofs, and the M3 obstruction of Prop. 4.10.
//
// Run: go run ./examples/latticelab
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/paper"
	"repro/internal/query"
	"repro/internal/varset"
)

func main() {
	fmt.Println("Fig. 10 taxonomy, computed from first principles:")
	fmt.Println()
	classify("Boolean algebra (triangle)", paper.TriangleProduct(3))
	classify("Fig.1 running example", paper.Fig1QuasiProduct(16))
	classify("M3 (Fig.3 right)", paper.M3Instance(8))
	q4, _ := paper.Fig4Instance(27)
	classify("Fig.4 (chain bound not tight)", q4)
	classify("Fig.5 (z = f(x,y))", paper.Fig5Instance(8))
	q9, _ := paper.Fig9Instance(16)
	classify("Fig.9 (no SM proof)", q9)
	classify("simple FDs (Prop. 3.2)", paper.SimpleFDChain(4, 16))

	fmt.Println("structure-only lattices:")
	n5 := lattice.FromFamily(3, []varset.Set{
		varset.Empty, varset.Of(0), varset.Of(0, 1), varset.Of(2), varset.Of(0, 1, 2)})
	fmt.Printf("  N5: distributive=%v modular=%v M3-top=%v (paper: N5 is normal)\n",
		n5.IsDistributive(), n5.IsModular(), n5.HasM3Top())
	f7 := lattice.FromFamily(6, paper.Fig7Family())
	fmt.Printf("  Fig.7: size=%d distributive=%v (Example 5.29: has a non-good SM proof)\n",
		f7.Size(), f7.IsDistributive())
}

func classify(name string, q *query.Q) {
	a := core.Analyze(q)
	fmt.Printf("%-32s |L|=%-3d distributive=%-5v normal=%-5v M3-top=%-5v goodSMproof=%-5v\n",
		name, a.LatticeSize, a.Distributive, a.Normal, a.HasM3Top, a.SMProofExists)
	fmt.Printf("%-32s bounds(log2): AGM=%.2f AGM(Q⁺)=%.2f chain=%.2f GLVV=%.2f\n\n",
		"", a.LogAGM, a.LogAGMClosure, a.LogChain, a.LogLLP)
}
