// Quickstart for the public fdq API: define the triangle query over a
// small graph, ask the planner how it would run, stream the first few
// rows, and count the full answer without materializing it.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/fdq"
)

func main() {
	// Q(x,y,z) :- R(x,y), S(y,z), T(z,x) over a small random-ish graph.
	cat := fdq.NewCatalog()
	var r, s, t [][]fdq.Value
	for i := int64(0); i < 30; i++ {
		r = append(r, []fdq.Value{i % 6, (i * 7) % 6})
		s = append(s, []fdq.Value{(i * 7) % 6, (i * 11) % 6})
		t = append(t, []fdq.Value{(i * 11) % 6, i % 6})
	}
	must(cat.Define("R", []string{"src", "dst"}, r))
	must(cat.Define("S", []string{"src", "dst"}, s))
	must(cat.Define("T", []string{"src", "dst"}, t))

	sess := cat.Session()
	ctx := context.Background()
	triangle := func() *fdq.Q {
		return fdq.Query().Vars("x", "y", "z").
			Rel("R", "x", "y").Rel("S", "y", "z").Rel("T", "z", "x")
	}

	// The planner's view: chosen algorithm and predicted output bound.
	ex, err := sess.Explain(triangle())
	must(err)
	fmt.Printf("plan: %s — %s\n", ex.Algorithm, ex.Reason)
	fmt.Printf("predicted log2 bound: %.3f\n", ex.LogBound)

	// Stream the first 5 rows; the executor stops the moment the 5th row
	// exists (LIMIT is a true prefix of the sorted answer).
	rows, err := sess.Query(ctx, triangle().Limit(5))
	must(err)
	defer rows.Close()
	for rows.Next() {
		var x, y, z fdq.Value
		must(rows.Scan(&x, &y, &z))
		fmt.Printf("  triangle %d -> %d -> %d\n", x, y, z)
	}
	must(rows.Err())

	// COUNT(*) without materializing a single tuple. The session's
	// prepared-shape cache makes this re-run skip straight to execution.
	n, err := sess.Count(ctx, triangle())
	must(err)
	fmt.Printf("|Q| = %d triangles\n", n)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
