// Quickstart: define the triangle query, compute its AGM/GLVV bounds, and
// evaluate it with a worst-case optimal algorithm.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/rel"
)

func main() {
	// Q(x,y,z) :- R(x,y), S(y,z), T(z,x) over a small random-ish graph.
	q := query.New("x", "y", "z")
	R := rel.New("R", 0, 1)
	S := rel.New("S", 1, 2)
	T := rel.New("T", 2, 0)
	for i := int64(0); i < 30; i++ {
		R.Add(i%6, (i*7)%6)
		S.Add((i*7)%6, (i*11)%6)
		T.Add((i*11)%6, i%6)
	}
	R.SortDedup()
	S.SortDedup()
	T.SortDedup()
	q.AddRel(R)
	q.AddRel(S)
	q.AddRel(T)
	if err := q.Validate(); err != nil {
		panic(err)
	}

	a := core.Analyze(q)
	fmt.Printf("lattice size: %d (Boolean algebra: %v)\n", a.LatticeSize, a.BooleanAlg)
	fmt.Printf("log2 AGM bound:   %.3f  (size bound %.1f)\n", a.LogAGM, pow2(a.LogAGM))
	fmt.Printf("log2 GLVV bound:  %.3f  (equal to AGM without FDs)\n", a.LogLLP)
	fmt.Printf("log2 chain bound: %.3f\n", a.LogChain)

	out, st, err := core.Execute(q, core.AlgAuto)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|Q| = %d tuples in %v (algorithm %s)\n", out.Len(), st.Duration, st.Plan.Algorithm)
	for i := 0; i < 5 && i < out.Len(); i++ {
		fmt.Printf("  %v\n", out.Row(i))
	}
}

func pow2(x float64) float64 {
	p := 1.0
	for i := 0; i < int(x); i++ {
		p *= 2
	}
	return p
}
