// udfjoin reproduces the paper's motivating example (Eq. 1, Sec. 1.1):
//
//	Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u), u = f(x,z), x = g(y,u)
//
// Computing R ⋈ S ⋈ T first and filtering afterwards costs Θ(N²) on the
// skew instance; the UDFs' functional dependencies drop the GLVV bound to
// N^{3/2}, and the Chain Algorithm meets it.
//
// Run: go run ./examples/udfjoin
package main

import (
	"fmt"

	"repro/internal/chainalg"
	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/wcoj"
)

func main() {
	for _, n := range []int{128, 256, 512} {
		q := paper.Fig1Skew(n)
		a := core.Analyze(q)
		fmt.Printf("N = %4d: AGM = N^%.2f, GLVV = N^%.2f, chain bound = N^%.2f\n",
			n, a.LogAGM/log2(n), a.LogLLP/log2(n), a.LogChain/log2(n))

		out, chainStats, err := chainalg.RunBest(q)
		if err != nil {
			panic(err)
		}
		_, gjStats, err := wcoj.GenericJoin(q, []int{1, 2, 0, 3})
		if err != nil {
			panic(err)
		}
		fmt.Printf("          |Q| = %d;  chain work = %d;  FD-blind generic-join work = %d  (%.1f×)\n",
			out.Len(), chainStats.TuplesVisited+chainStats.Probes,
			gjStats.Extensions+gjStats.Lookups,
			float64(gjStats.Extensions+gjStats.Lookups)/float64(chainStats.TuplesVisited+chainStats.Probes))
	}
}

func log2(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
